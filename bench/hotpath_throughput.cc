/**
 * @file
 * Simulator-throughput benchmark: how many simulated memory accesses
 * per wall-clock second the per-access hot path sustains.
 *
 * Runs a fig18-style multiprogrammed four-app mix serially (no worker
 * pool, so the number measures the single-stream hot path: event
 * queue, fabric delivery, organization continuations, page-table
 * translation) once on the private baseline and once on NOCSTAR, then
 * reports simulated accesses per second and writes the machine-
 * readable BENCH_hotpath.json used to track the perf trajectory
 * across PRs. The JSON also carries each run's hit-streak bypass
 * length distribution so the bypass's coverage is observable.
 *
 * Usage: bench_hotpath [accesses-per-thread] [--baseline-json FILE]
 * (default 20000 accesses). --baseline-json loads a previously
 * committed BENCH_hotpath.json and prints the speedup against it.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hh"

using namespace nocstar;
using namespace nocstar::bench;

namespace
{

struct Measurement
{
    const char *org;
    std::uint64_t accesses = 0;
    Cycle simCycles = 0;
    double wallSeconds = 0;
    /** Bypass streak-length Distribution, JSON-rendered. */
    std::string streakJson;
    double streakMean = 0;

    double
    accessesPerSec() const
    {
        return wallSeconds > 0
            ? static_cast<double>(accesses) / wallSeconds : 0.0;
    }
};

Measurement
measure(const char *label, core::OrgKind kind, std::uint64_t accesses)
{
    // Fig 18 methodology: four paper apps, cores/4 threads each.
    cpu::SystemConfig config =
        makeMixConfig({0, 3, 6, 9}, kind, 32);

    // Untimed warmup run absorbs first-touch page-table allocation,
    // cold branch predictors and allocator warmup.
    runOnce(config, accesses / 4);

    // The timed run holds its System, so the bypass streak stat can
    // be read back after run() (runOnce() discards it).
    cpu::SystemConfig cfg = applySelections(config);
    if (std::vector<std::string> errors = cfg.validate();
        !errors.empty()) {
        for (const std::string &e : errors)
            std::fprintf(stderr, "invalid config: %s\n", e.c_str());
        std::exit(2);
    }
    cpu::System system(cfg);
    auto start = std::chrono::steady_clock::now();
    cpu::RunResult result = system.run(accesses);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    Measurement m;
    m.org = label;
    m.accesses = result.l1Accesses;
    m.simCycles = result.cycles;
    m.wallSeconds = wall;
    std::ostringstream streaks;
    system.bypassStreaks().dumpJson(streaks);
    m.streakJson = streaks.str();
    m.streakMean = system.bypassStreaks().mean();
    return m;
}

/**
 * Pull "aggregate_accesses_per_sec" out of a BENCH_hotpath.json
 * written by any prior revision of this bench. @return 0 on failure.
 */
double
loadBaselineAggregate(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read baseline json '%s'\n",
                     path.c_str());
        return 0;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    const std::string tag = "\"aggregate_accesses_per_sec\":";
    std::size_t at = text.find(tag);
    if (at == std::string::npos) {
        std::fprintf(stderr,
                     "no aggregate_accesses_per_sec in '%s'\n",
                     path.c_str());
        return 0;
    }
    return std::strtod(text.c_str() + at + tag.size(), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args{20000, 0};
    std::string baseline_path;
    bench::ArgParser parser = bench::makeBenchParser(
        argc, argv,
        "simulator hot-path throughput guard (sim-cycles/s)", args);
    parser.option("baseline-json", &baseline_path,
                  "prior BENCH_hotpath.json to print the speedup "
                  "against");
    bench::finalizeBenchArgs(parser, argc, argv, args);
    std::uint64_t accesses = args.accesses;

    std::printf("Simulator hot-path throughput "
                "(fig18-style mix, 32 cores, serial)\n");
    std::printf("%-10s %14s %14s %10s %16s %12s\n", "org", "accesses",
                "sim cycles", "wall s", "accesses/sec",
                "mean streak");

    Measurement runs[] = {
        measure("private", core::OrgKind::Private, accesses),
        measure("nocstar", core::OrgKind::Nocstar, accesses),
    };
    double total_accesses = 0, total_wall = 0;
    for (const Measurement &m : runs) {
        std::printf("%-10s %14llu %14llu %10.3f %16.0f %12.2f\n",
                    m.org, static_cast<unsigned long long>(m.accesses),
                    static_cast<unsigned long long>(m.simCycles),
                    m.wallSeconds, m.accessesPerSec(), m.streakMean);
        total_accesses += static_cast<double>(m.accesses);
        total_wall += m.wallSeconds;
    }
    double aggregate = total_wall > 0 ? total_accesses / total_wall : 0;
    std::printf("%-10s %14.0f %14s %10.3f %16.0f\n", "aggregate",
                total_accesses, "-", total_wall, aggregate);

    if (!baseline_path.empty()) {
        double base = loadBaselineAggregate(baseline_path);
        if (base > 0)
            std::printf("baseline   %16.0f accesses/sec -> speedup "
                        "%.2fx\n", base, aggregate / base);
    }

    if (std::FILE *f = std::fopen("BENCH_hotpath.json", "w")) {
        std::fprintf(f,
                     "{\"bench\": \"hotpath\", "
                     "\"accesses_per_thread\": %llu, "
                     "\"private_accesses_per_sec\": %.1f, "
                     "\"nocstar_accesses_per_sec\": %.1f, "
                     "\"aggregate_accesses_per_sec\": %.1f, "
                     "\"total_accesses\": %.0f, "
                     "\"wall_seconds\": %.6f, "
                     "\"private_streak_length\": %s, "
                     "\"nocstar_streak_length\": %s}\n",
                     static_cast<unsigned long long>(accesses),
                     runs[0].accessesPerSec(), runs[1].accessesPerSec(),
                     aggregate, total_accesses, total_wall,
                     runs[0].streakJson.c_str(),
                     runs[1].streakJson.c_str());
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot write BENCH_hotpath.json\n");
    }
    return 0;
}
