/**
 * @file
 * Simulator-throughput benchmark: how many simulated memory accesses
 * per wall-clock second the per-access hot path sustains.
 *
 * Runs a fig18-style multiprogrammed four-app mix serially (no worker
 * pool, so the number measures the single-stream hot path: event
 * queue, fabric delivery, organization continuations, page-table
 * translation) once on the private baseline and once on NOCSTAR, then
 * reports simulated accesses per second and writes the machine-
 * readable BENCH_hotpath.json used to track the perf trajectory
 * across PRs.
 *
 * Usage: bench_hotpath [accesses-per-thread] (default 20000)
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"

using namespace nocstar;
using namespace nocstar::bench;

namespace
{

struct Measurement
{
    const char *org;
    std::uint64_t accesses = 0;
    Cycle simCycles = 0;
    double wallSeconds = 0;

    double
    accessesPerSec() const
    {
        return wallSeconds > 0
            ? static_cast<double>(accesses) / wallSeconds : 0.0;
    }
};

Measurement
measure(const char *label, core::OrgKind kind, std::uint64_t accesses)
{
    // Fig 18 methodology: four paper apps, cores/4 threads each.
    cpu::SystemConfig config =
        makeMixConfig({0, 3, 6, 9}, kind, 32);

    // Untimed warmup run absorbs first-touch page-table allocation,
    // cold branch predictors and allocator warmup.
    runOnce(config, accesses / 4);

    auto start = std::chrono::steady_clock::now();
    cpu::RunResult result = runOnce(config, accesses);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    Measurement m;
    m.org = label;
    m.accesses = result.l1Accesses;
    m.simCycles = result.cycles;
    m.wallSeconds = wall;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, 20000,
        "simulator hot-path throughput guard (sim-cycles/s)");
    std::uint64_t accesses = args.accesses;

    std::printf("Simulator hot-path throughput "
                "(fig18-style mix, 32 cores, serial)\n");
    std::printf("%-10s %14s %14s %10s %16s\n", "org", "accesses",
                "sim cycles", "wall s", "accesses/sec");

    Measurement runs[] = {
        measure("private", core::OrgKind::Private, accesses),
        measure("nocstar", core::OrgKind::Nocstar, accesses),
    };
    double total_accesses = 0, total_wall = 0;
    for (const Measurement &m : runs) {
        std::printf("%-10s %14llu %14llu %10.3f %16.0f\n", m.org,
                    static_cast<unsigned long long>(m.accesses),
                    static_cast<unsigned long long>(m.simCycles),
                    m.wallSeconds, m.accessesPerSec());
        total_accesses += static_cast<double>(m.accesses);
        total_wall += m.wallSeconds;
    }
    double aggregate = total_wall > 0 ? total_accesses / total_wall : 0;
    std::printf("%-10s %14.0f %14s %10.3f %16.0f\n", "aggregate",
                total_accesses, "-", total_wall, aggregate);

    if (std::FILE *f = std::fopen("BENCH_hotpath.json", "w")) {
        std::fprintf(f,
                     "{\"bench\": \"hotpath\", "
                     "\"accesses_per_thread\": %llu, "
                     "\"private_accesses_per_sec\": %.1f, "
                     "\"nocstar_accesses_per_sec\": %.1f, "
                     "\"aggregate_accesses_per_sec\": %.1f, "
                     "\"total_accesses\": %.0f, "
                     "\"wall_seconds\": %.6f}\n",
                     static_cast<unsigned long long>(accesses),
                     runs[0].accessesPerSec(), runs[1].accessesPerSec(),
                     aggregate, total_accesses, total_wall);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot write BENCH_hotpath.json\n");
    }
    return 0;
}
