/**
 * @file
 * Fig 6 (left): concurrency distribution averaged across workloads as
 * the L1 TLB size scales (0.5x / baseline / 1.5x) and as the core
 * count grows (64-512). (Right): per-slice concurrency for a
 * distributed shared L2 TLB with one slice per core, 32-512 slices.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

namespace
{

constexpr const char *bucketNames[] = {"1", "2-4", "5-8", "9-12",
                                       "13-16", "17-20", "21-24",
                                       "25-28", "29+"};

std::vector<double>
averageBuckets(unsigned cores, double l1_scale, std::uint64_t accesses,
               bool per_slice)
{
    std::vector<double> avg(9, 0.0);
    for (const auto &spec : workload::paperWorkloads()) {
        auto config = bench::makeConfig(core::OrgKind::Distributed,
                                        cores, spec);
        config.l1.scale = l1_scale;
        auto result = bench::runOnce(config, accesses);
        const auto &buckets = per_slice
            ? result.sliceConcurrencyBuckets
            : result.concurrencyBuckets;
        for (std::size_t i = 0; i < 9; ++i)
            avg[i] += buckets[i] / 11.0;
    }
    return avg;
}

void
printBuckets(const char *label, const std::vector<double> &buckets)
{
    std::printf("%-12s", label);
    for (double b : buckets)
        std::printf("%8.3f", b);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, 4000,
        "Fig 6: chip-wide / per-slice concurrency vs core count");
    std::uint64_t base = args.accesses;

    std::printf("Fig 6 (left): chip-wide concurrency, averaged across "
                "workloads\n");
    std::printf("%-12s", "config");
    for (const char *b : bucketNames)
        std::printf("%8s", b);
    std::printf("\n");

    printBuckets("baseline", averageBuckets(32, 1.0, base, false));
    printBuckets("0.5x-L1", averageBuckets(32, 0.5, base, false));
    printBuckets("1.5x-L1", averageBuckets(32, 1.5, base, false));
    for (unsigned cores : {64u, 128u, 256u, 512u}) {
        std::uint64_t accesses = base * 32 / cores + 500;
        char label[32];
        std::snprintf(label, sizeof(label), "%u-cores", cores);
        printBuckets(label, averageBuckets(cores, 1.0, accesses,
                                           false));
    }

    std::printf("\nFig 6 (right): per-slice concurrency, distributed "
                "shared L2 TLB\n");
    std::printf("%-12s", "slices");
    for (const char *b : bucketNames)
        std::printf("%8s", b);
    std::printf("\n");
    for (unsigned cores : {32u, 64u, 128u, 256u, 512u}) {
        std::uint64_t accesses = base * 32 / cores + 500;
        char label[32];
        std::snprintf(label, sizeof(label), "%u", cores);
        printBuckets(label, averageBuckets(cores, 1.0, accesses, true));
    }
    return 0;
}
