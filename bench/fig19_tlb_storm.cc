/**
 * @file
 * Fig 19 + §V pathological workloads. First section: the TLB-storm
 * microbenchmark (aggressive context switches flushing every TLB plus
 * a promote/demote remap loop firing shootdown storms) run
 * concurrently with the workloads; average speedups vs private for
 * monolithic / distributed / NOCSTAR at 16/32/64 cores, alone and
 * with the microbenchmark. Second section: the slice-hotspot
 * microbenchmark where every thread directs a share of its accesses
 * at one slice.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

namespace
{

double
averageSpeedup(core::OrgKind kind, unsigned cores,
               std::uint64_t accesses, bool with_storm,
               int hotspot_slice = -1)
{
    double avg = 0;
    for (const auto &spec : workload::paperWorkloads()) {
        auto make = [&](core::OrgKind k) {
            auto config = bench::makeConfig(k, cores, spec);
            if (with_storm) {
                config.contextSwitchInterval = 50000; // ~0.5ms-scale
                config.stormRemapInterval = 5000;
                config.stormMessagesPerOp = 8;
            }
            config.hotspotSlice = hotspot_slice;
            return config;
        };
        auto priv = bench::runOnce(make(core::OrgKind::Private),
                                   accesses);
        auto shared = bench::runOnce(make(kind), accesses);
        avg += bench::speedupVsPrivate(priv, shared) / 11.0;
    }
    return avg;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t base_accesses = argc > 1
        ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 6000;

    const core::OrgKind kinds[] = {core::OrgKind::MonolithicMesh,
                                   core::OrgKind::Distributed,
                                   core::OrgKind::Nocstar};
    const char *names[] = {"monolithic", "distributed", "nocstar"};

    std::printf("Fig 19: TLB storm microbenchmark, average speedup vs "
                "private\n");
    std::printf("%8s %-12s %10s %10s\n", "cores", "org", "alone",
                "w/ub");
    for (unsigned cores : {16u, 32u, 64u}) {
        std::uint64_t accesses = base_accesses * 16 / cores + 2000;
        for (std::size_t k = 0; k < 3; ++k) {
            double alone = averageSpeedup(kinds[k], cores, accesses,
                                          false);
            double with_ub = averageSpeedup(kinds[k], cores, accesses,
                                            true);
            std::printf("%8u %-12s %10.3f %10.3f\n", cores, names[k],
                        alone, with_ub);
        }
    }

    std::printf("\nSlice-hotspot microbenchmark (30%% of accesses "
                "directed at slice 0), 32 cores\n");
    std::printf("%-12s %10s\n", "org", "speedup");
    std::uint64_t accesses = base_accesses / 2 + 2000;
    for (std::size_t k = 0; k < 3; ++k) {
        double speedup = averageSpeedup(kinds[k], 32, accesses, false,
                                        /*hotspot_slice=*/0);
        std::printf("%-12s %10.3f\n", names[k], speedup);
    }
    return 0;
}
