/**
 * @file
 * Fig 19 + §V pathological workloads. First section: the TLB-storm
 * microbenchmark (aggressive context switches flushing every TLB plus
 * a promote/demote remap loop firing shootdown storms) run
 * concurrently with the workloads; average speedups vs private for
 * monolithic / distributed / NOCSTAR at 16/32/64 cores, alone and
 * with the microbenchmark. Second section: the slice-hotspot
 * microbenchmark where every thread directs a share of its accesses
 * at one slice.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

namespace
{

const core::OrgKind orgKinds[] = {core::OrgKind::MonolithicMesh,
                                  core::OrgKind::Distributed,
                                  core::OrgKind::Nocstar};

cpu::SystemConfig
makeStormConfig(core::OrgKind kind, unsigned cores,
                const workload::WorkloadSpec &spec, bool with_storm,
                int hotspot_slice)
{
    auto config = bench::makeConfig(kind, cores, spec);
    if (with_storm) {
        config.contextSwitchInterval = 50000; // ~0.5ms-scale
        config.stormRemapInterval = 5000;
        config.stormMessagesPerOp = 8;
    }
    config.hotspotSlice = hotspot_slice;
    return config;
}

/**
 * One sweep block: the 11 private baselines followed by the 11 runs
 * of each shared organization, all with the same storm/hotspot knobs.
 */
std::vector<bench::SimJob>
makeBlock(unsigned cores, std::uint64_t accesses, bool with_storm,
          int hotspot_slice = -1)
{
    std::vector<bench::SimJob> jobs;
    for (const auto &spec : workload::paperWorkloads())
        jobs.push_back({makeStormConfig(core::OrgKind::Private, cores,
                                        spec, with_storm,
                                        hotspot_slice),
                        accesses});
    for (core::OrgKind kind : orgKinds)
        for (const auto &spec : workload::paperWorkloads())
            jobs.push_back({makeStormConfig(kind, cores, spec,
                                            with_storm, hotspot_slice),
                            accesses});
    return jobs;
}

/** Average speedup of shared org @p k over private within a block. */
double
blockAverage(const cpu::RunResult *block, std::size_t k)
{
    double avg = 0;
    for (std::size_t w = 0; w < 11; ++w)
        avg += bench::speedupVsPrivate(block[w],
                                       block[11 * (1 + k) + w]) /
               11.0;
    return avg;
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::parseBenchArgs(argc, argv, 6000);

    const char *names[] = {"monolithic", "distributed", "nocstar"};
    const unsigned coreCounts[] = {16u, 32u, 64u};
    constexpr std::size_t block = 44; // 11 private + 3 x 11 shared

    // Blocks 0-5: (16/32/64 cores) x (alone, with storm); block 6:
    // the 32-core slice-hotspot microbenchmark.
    std::vector<bench::SimJob> jobs;
    for (unsigned cores : coreCounts) {
        std::uint64_t accesses = args.accesses * 16 / cores + 2000;
        for (bool with_storm : {false, true}) {
            auto blockJobs = makeBlock(cores, accesses, with_storm);
            jobs.insert(jobs.end(), blockJobs.begin(),
                        blockJobs.end());
        }
    }
    std::uint64_t hotspot_accesses = args.accesses / 2 + 2000;
    auto hotspotJobs = makeBlock(32, hotspot_accesses, false,
                                 /*hotspot_slice=*/0);
    jobs.insert(jobs.end(), hotspotJobs.begin(), hotspotJobs.end());

    bench::SweepHarness harness("fig19_tlb_storm", args.jobs);
    auto results = harness.runMany(jobs);

    std::printf("Fig 19: TLB storm microbenchmark, average speedup vs "
                "private\n");
    std::printf("%8s %-12s %10s %10s\n", "cores", "org", "alone",
                "w/ub");
    for (std::size_t c = 0; c < 3; ++c) {
        const cpu::RunResult *alone = results.data() + 2 * c * block;
        const cpu::RunResult *storm = alone + block;
        for (std::size_t k = 0; k < 3; ++k) {
            std::printf("%8u %-12s %10.3f %10.3f\n", coreCounts[c],
                        names[k], blockAverage(alone, k),
                        blockAverage(storm, k));
        }
    }

    std::printf("\nSlice-hotspot microbenchmark (30%% of accesses "
                "directed at slice 0), 32 cores\n");
    std::printf("%-12s %10s\n", "org", "speedup");
    const cpu::RunResult *hotspot = results.data() + 6 * block;
    for (std::size_t k = 0; k < 3; ++k)
        std::printf("%-12s %10.3f\n", names[k],
                    blockAverage(hotspot, k));
    return 0;
}
