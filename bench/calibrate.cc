/**
 * @file
 * Calibration harness (not a paper figure): prints, for each workload,
 * the statistics the paper's text pins down -- L1 miss rate, private L2
 * TLB miss rate (target 5-18 %), percent of private misses eliminated
 * by sharing (target 70-90 %), walk latency, fraction of walks past the
 * L2 (target 70-87 %), and speedups of the four organizations -- so the
 * workload generator parameters can be tuned honestly.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    unsigned cores = 32;
    bench::BenchArgs args{bench::defaultAccesses, 0};
    bench::ArgParser parser = bench::makeBenchParser(
        argc, argv,
        "calibration harness: per-workload statistics the paper pins "
        "down, for tuning the workload generator",
        args, /*with_accesses=*/false);
    parser.positional("CORES", &cores, "core count (default 32)");
    parser.positional("ACCESSES", &args.accesses,
                      "accesses per thread (default " +
                          std::to_string(args.accesses) + ")");
    bench::finalizeBenchArgs(parser, argc, argv, args);
    std::uint64_t accesses = args.accesses;

    std::printf("calibration @ %u cores, %llu accesses/thread\n", cores,
                static_cast<unsigned long long>(accesses));
    std::printf("%-16s %6s %6s %6s %6s %6s %6s | %6s %6s %6s %6s\n",
                "workload", "l1m%", "l2m%", "elim%", "walk", ">L2%",
                "ipcP", "mono", "dist", "nstar", "ideal");

    for (const auto &spec : workload::paperWorkloads()) {
        auto priv = bench::runOnce(
            bench::makeConfig(core::OrgKind::Private, cores, spec),
            accesses);
        auto mono = bench::runOnce(
            bench::makeConfig(core::OrgKind::MonolithicMesh, cores,
                              spec),
            accesses);
        auto dist = bench::runOnce(
            bench::makeConfig(core::OrgKind::Distributed, cores, spec),
            accesses);
        auto nstar = bench::runOnce(
            bench::makeConfig(core::OrgKind::Nocstar, cores, spec),
            accesses);
        auto ideal = bench::runOnce(
            bench::makeConfig(core::OrgKind::IdealShared, cores, spec),
            accesses);

        double l1m = priv.l1Accesses
            ? 100.0 * static_cast<double>(priv.l1Misses) /
                  static_cast<double>(priv.l1Accesses)
            : 0.0;
        double elim = priv.l2Misses
            ? 100.0 * (1.0 - static_cast<double>(nstar.l2Misses) /
                                 static_cast<double>(priv.l2Misses))
            : 0.0;

        std::printf(
            "%-16s %6.2f %6.2f %6.1f %6.1f %6.1f %6.3f | %6.3f %6.3f "
            "%6.3f %6.3f | lat %5.1f %5.1f %5.1f %5.1f %5.1f net %4.2f\n",
            spec.name.c_str(), l1m, 100.0 * priv.l2MissRate, elim,
            priv.avgWalkLatency, 100.0 * priv.beyondL2Fraction,
            priv.ipc, bench::speedupVsPrivate(priv, mono),
            bench::speedupVsPrivate(priv, dist),
            bench::speedupVsPrivate(priv, nstar),
            bench::speedupVsPrivate(priv, ideal),
            priv.avgL2AccessLatency, mono.avgL2AccessLatency,
            dist.avgL2AccessLatency, nstar.avgL2AccessLatency,
            ideal.avgL2AccessLatency, nstar.fabricAvgLatency);
    }
    return 0;
}
