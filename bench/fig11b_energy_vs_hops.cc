/**
 * @file
 * Fig 11(b): energy per message (pJ) through the TLB interconnect vs
 * hop count, split into link / switch / control / SRAM components for
 * (M)onolithic, (D)istributed and (N)OCSTAR.
 */

#include <cstdio>
#include <initializer_list>

#include "bench/arg_parser.hh"
#include "energy/noc_energy.hh"

using namespace nocstar;
using namespace nocstar::energy;

int
main(int argc, char **argv)
{
    nocstar::bench::ArgParser parser(
        "fig11b_energy_vs_hops",
        "Fig 11b: energy per message vs hop count");
    parser.parseOrExit(argc, argv);
    std::printf("Fig 11b: energy per message (pJ): link/switch/control/"
                "sram = total\n");
    std::printf("%6s  %-34s %-34s %-34s\n", "hops", "monolithic",
                "distributed", "nocstar");
    for (unsigned hops : {0u, 1u, 2u, 4u, 6u, 8u, 10u, 12u}) {
        auto mono = NocEnergyModel::message(NocStyle::MonolithicMesh,
                                            hops, 32 * 1536);
        auto dist = NocEnergyModel::message(NocStyle::DistributedMesh,
                                            hops, 1024);
        auto nstar = NocEnergyModel::message(NocStyle::Nocstar, hops,
                                             920);
        auto cell = [](const MessageEnergy &e) {
            static thread_local char buffer[64];
            std::snprintf(buffer, sizeof(buffer),
                          "%5.1f/%5.1f/%5.1f/%5.1f =%6.1f", e.link,
                          e.switching, e.control, e.sram, e.total());
            return buffer;
        };
        std::printf("%6u  %-34s", hops, cell(mono));
        std::printf(" %-34s", cell(dist));
        std::printf(" %-34s\n", cell(nstar));
    }
    return 0;
}
