# Empty dependencies file for design_space_study.
# This may be replaced when dependencies are built.
