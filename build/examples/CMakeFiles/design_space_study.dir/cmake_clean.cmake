file(REMOVE_RECURSE
  "CMakeFiles/design_space_study.dir/design_space_study.cpp.o"
  "CMakeFiles/design_space_study.dir/design_space_study.cpp.o.d"
  "design_space_study"
  "design_space_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_space_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
