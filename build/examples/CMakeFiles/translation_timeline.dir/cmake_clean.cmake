file(REMOVE_RECURSE
  "CMakeFiles/translation_timeline.dir/translation_timeline.cpp.o"
  "CMakeFiles/translation_timeline.dir/translation_timeline.cpp.o.d"
  "translation_timeline"
  "translation_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translation_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
