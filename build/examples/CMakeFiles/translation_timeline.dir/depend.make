# Empty dependencies file for translation_timeline.
# This may be replaced when dependencies are built.
