# Empty dependencies file for shootdown_storm.
# This may be replaced when dependencies are built.
