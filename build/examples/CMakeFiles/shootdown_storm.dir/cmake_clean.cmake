file(REMOVE_RECURSE
  "CMakeFiles/shootdown_storm.dir/shootdown_storm.cpp.o"
  "CMakeFiles/shootdown_storm.dir/shootdown_storm.cpp.o.d"
  "shootdown_storm"
  "shootdown_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shootdown_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
