# Empty compiler generated dependencies file for fig03_sram_latency.
# This may be replaced when dependencies are built.
