file(REMOVE_RECURSE
  "CMakeFiles/fig03_sram_latency.dir/fig03_sram_latency.cc.o"
  "CMakeFiles/fig03_sram_latency.dir/fig03_sram_latency.cc.o.d"
  "fig03_sram_latency"
  "fig03_sram_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_sram_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
