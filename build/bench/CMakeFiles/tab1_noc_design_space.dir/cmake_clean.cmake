file(REMOVE_RECURSE
  "CMakeFiles/tab1_noc_design_space.dir/tab1_noc_design_space.cc.o"
  "CMakeFiles/tab1_noc_design_space.dir/tab1_noc_design_space.cc.o.d"
  "tab1_noc_design_space"
  "tab1_noc_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_noc_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
