# Empty compiler generated dependencies file for tab1_noc_design_space.
# This may be replaced when dependencies are built.
