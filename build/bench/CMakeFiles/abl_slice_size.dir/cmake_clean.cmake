file(REMOVE_RECURSE
  "CMakeFiles/abl_slice_size.dir/abl_slice_size.cc.o"
  "CMakeFiles/abl_slice_size.dir/abl_slice_size.cc.o.d"
  "abl_slice_size"
  "abl_slice_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_slice_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
