# Empty dependencies file for abl_slice_size.
# This may be replaced when dependencies are built.
