file(REMOVE_RECURSE
  "CMakeFiles/fig18_multiprogrammed.dir/fig18_multiprogrammed.cc.o"
  "CMakeFiles/fig18_multiprogrammed.dir/fig18_multiprogrammed.cc.o.d"
  "fig18_multiprogrammed"
  "fig18_multiprogrammed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_multiprogrammed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
