# Empty dependencies file for fig18_multiprogrammed.
# This may be replaced when dependencies are built.
