file(REMOVE_RECURSE
  "CMakeFiles/tab3_sensitivity.dir/tab3_sensitivity.cc.o"
  "CMakeFiles/tab3_sensitivity.dir/tab3_sensitivity.cc.o.d"
  "tab3_sensitivity"
  "tab3_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
