# Empty dependencies file for tab3_sensitivity.
# This may be replaced when dependencies are built.
