file(REMOVE_RECURSE
  "CMakeFiles/fig02_shared_hit_rate.dir/fig02_shared_hit_rate.cc.o"
  "CMakeFiles/fig02_shared_hit_rate.dir/fig02_shared_hit_rate.cc.o.d"
  "fig02_shared_hit_rate"
  "fig02_shared_hit_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_shared_hit_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
