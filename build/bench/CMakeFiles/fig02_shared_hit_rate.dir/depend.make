# Empty dependencies file for fig02_shared_hit_rate.
# This may be replaced when dependencies are built.
