file(REMOVE_RECURSE
  "CMakeFiles/fig11b_energy_vs_hops.dir/fig11b_energy_vs_hops.cc.o"
  "CMakeFiles/fig11b_energy_vs_hops.dir/fig11b_energy_vs_hops.cc.o.d"
  "fig11b_energy_vs_hops"
  "fig11b_energy_vs_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_energy_vs_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
