# Empty compiler generated dependencies file for fig11b_energy_vs_hops.
# This may be replaced when dependencies are built.
