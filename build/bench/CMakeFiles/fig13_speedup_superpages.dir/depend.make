# Empty dependencies file for fig13_speedup_superpages.
# This may be replaced when dependencies are built.
