file(REMOVE_RECURSE
  "CMakeFiles/fig13_speedup_superpages.dir/fig13_speedup_superpages.cc.o"
  "CMakeFiles/fig13_speedup_superpages.dir/fig13_speedup_superpages.cc.o.d"
  "fig13_speedup_superpages"
  "fig13_speedup_superpages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_speedup_superpages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
