file(REMOVE_RECURSE
  "CMakeFiles/fig11a_latency_vs_hops.dir/fig11a_latency_vs_hops.cc.o"
  "CMakeFiles/fig11a_latency_vs_hops.dir/fig11a_latency_vs_hops.cc.o.d"
  "fig11a_latency_vs_hops"
  "fig11a_latency_vs_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_latency_vs_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
