# Empty compiler generated dependencies file for fig12_speedup_4k.
# This may be replaced when dependencies are built.
