file(REMOVE_RECURSE
  "CMakeFiles/fig12_speedup_4k.dir/fig12_speedup_4k.cc.o"
  "CMakeFiles/fig12_speedup_4k.dir/fig12_speedup_4k.cc.o.d"
  "fig12_speedup_4k"
  "fig12_speedup_4k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_speedup_4k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
