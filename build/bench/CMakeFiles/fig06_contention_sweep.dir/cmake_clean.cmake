file(REMOVE_RECURSE
  "CMakeFiles/fig06_contention_sweep.dir/fig06_contention_sweep.cc.o"
  "CMakeFiles/fig06_contention_sweep.dir/fig06_contention_sweep.cc.o.d"
  "fig06_contention_sweep"
  "fig06_contention_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_contention_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
