# Empty dependencies file for fig06_contention_sweep.
# This may be replaced when dependencies are built.
