# Empty dependencies file for fig04_monolithic_speedup.
# This may be replaced when dependencies are built.
