file(REMOVE_RECURSE
  "CMakeFiles/fig04_monolithic_speedup.dir/fig04_monolithic_speedup.cc.o"
  "CMakeFiles/fig04_monolithic_speedup.dir/fig04_monolithic_speedup.cc.o.d"
  "fig04_monolithic_speedup"
  "fig04_monolithic_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_monolithic_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
