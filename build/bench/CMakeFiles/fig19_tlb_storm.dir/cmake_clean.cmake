file(REMOVE_RECURSE
  "CMakeFiles/fig19_tlb_storm.dir/fig19_tlb_storm.cc.o"
  "CMakeFiles/fig19_tlb_storm.dir/fig19_tlb_storm.cc.o.d"
  "fig19_tlb_storm"
  "fig19_tlb_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_tlb_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
