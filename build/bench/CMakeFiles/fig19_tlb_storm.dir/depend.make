# Empty dependencies file for fig19_tlb_storm.
# This may be replaced when dependencies are built.
