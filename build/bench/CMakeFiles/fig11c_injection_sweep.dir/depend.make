# Empty dependencies file for fig11c_injection_sweep.
# This may be replaced when dependencies are built.
