file(REMOVE_RECURSE
  "CMakeFiles/fig11c_injection_sweep.dir/fig11c_injection_sweep.cc.o"
  "CMakeFiles/fig11c_injection_sweep.dir/fig11c_injection_sweep.cc.o.d"
  "fig11c_injection_sweep"
  "fig11c_injection_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11c_injection_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
