file(REMOVE_RECURSE
  "CMakeFiles/abl_priority_epoch.dir/abl_priority_epoch.cc.o"
  "CMakeFiles/abl_priority_epoch.dir/abl_priority_epoch.cc.o.d"
  "abl_priority_epoch"
  "abl_priority_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_priority_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
