# Empty compiler generated dependencies file for abl_hpcmax.
# This may be replaced when dependencies are built.
