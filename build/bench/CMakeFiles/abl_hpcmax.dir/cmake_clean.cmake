file(REMOVE_RECURSE
  "CMakeFiles/abl_hpcmax.dir/abl_hpcmax.cc.o"
  "CMakeFiles/abl_hpcmax.dir/abl_hpcmax.cc.o.d"
  "abl_hpcmax"
  "abl_hpcmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hpcmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
