# Empty compiler generated dependencies file for fig09_area_power.
# This may be replaced when dependencies are built.
