file(REMOVE_RECURSE
  "CMakeFiles/fig09_area_power.dir/fig09_area_power.cc.o"
  "CMakeFiles/fig09_area_power.dir/fig09_area_power.cc.o.d"
  "fig09_area_power"
  "fig09_area_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
