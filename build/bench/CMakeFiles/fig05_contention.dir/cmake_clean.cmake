file(REMOVE_RECURSE
  "CMakeFiles/fig05_contention.dir/fig05_contention.cc.o"
  "CMakeFiles/fig05_contention.dir/fig05_contention.cc.o.d"
  "fig05_contention"
  "fig05_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
