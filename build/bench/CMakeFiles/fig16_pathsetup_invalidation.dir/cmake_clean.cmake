file(REMOVE_RECURSE
  "CMakeFiles/fig16_pathsetup_invalidation.dir/fig16_pathsetup_invalidation.cc.o"
  "CMakeFiles/fig16_pathsetup_invalidation.dir/fig16_pathsetup_invalidation.cc.o.d"
  "fig16_pathsetup_invalidation"
  "fig16_pathsetup_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_pathsetup_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
