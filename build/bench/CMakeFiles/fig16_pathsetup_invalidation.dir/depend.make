# Empty dependencies file for fig16_pathsetup_invalidation.
# This may be replaced when dependencies are built.
