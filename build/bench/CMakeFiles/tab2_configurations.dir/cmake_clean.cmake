file(REMOVE_RECURSE
  "CMakeFiles/tab2_configurations.dir/tab2_configurations.cc.o"
  "CMakeFiles/tab2_configurations.dir/tab2_configurations.cc.o.d"
  "tab2_configurations"
  "tab2_configurations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_configurations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
