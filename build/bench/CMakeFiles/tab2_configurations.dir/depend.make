# Empty dependencies file for tab2_configurations.
# This may be replaced when dependencies are built.
