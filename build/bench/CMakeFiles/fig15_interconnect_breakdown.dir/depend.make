# Empty dependencies file for fig15_interconnect_breakdown.
# This may be replaced when dependencies are built.
