file(REMOVE_RECURSE
  "CMakeFiles/fig17_ptw_placement.dir/fig17_ptw_placement.cc.o"
  "CMakeFiles/fig17_ptw_placement.dir/fig17_ptw_placement.cc.o.d"
  "fig17_ptw_placement"
  "fig17_ptw_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_ptw_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
