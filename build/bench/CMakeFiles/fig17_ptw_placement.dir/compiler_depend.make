# Empty compiler generated dependencies file for fig17_ptw_placement.
# This may be replaced when dependencies are built.
