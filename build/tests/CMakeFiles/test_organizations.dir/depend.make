# Empty dependencies file for test_organizations.
# This may be replaced when dependencies are built.
