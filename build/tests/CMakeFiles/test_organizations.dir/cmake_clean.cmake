file(REMOVE_RECURSE
  "CMakeFiles/test_organizations.dir/test_organizations.cc.o"
  "CMakeFiles/test_organizations.dir/test_organizations.cc.o.d"
  "test_organizations"
  "test_organizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_organizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
