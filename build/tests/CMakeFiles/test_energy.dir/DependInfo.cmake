
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/test_energy.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/test_energy.dir/test_energy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/nocstar_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nocstar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/nocstar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nocstar_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nocstar_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/nocstar_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/nocstar_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nocstar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
