file(REMOVE_RECURSE
  "CMakeFiles/nocstar_noc.dir/design_space.cc.o"
  "CMakeFiles/nocstar_noc.dir/design_space.cc.o.d"
  "libnocstar_noc.a"
  "libnocstar_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocstar_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
