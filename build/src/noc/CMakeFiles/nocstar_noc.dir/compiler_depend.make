# Empty compiler generated dependencies file for nocstar_noc.
# This may be replaced when dependencies are built.
