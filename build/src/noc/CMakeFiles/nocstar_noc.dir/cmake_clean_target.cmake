file(REMOVE_RECURSE
  "libnocstar_noc.a"
)
