file(REMOVE_RECURSE
  "libnocstar_mem.a"
)
