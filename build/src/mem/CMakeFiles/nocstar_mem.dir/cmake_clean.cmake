file(REMOVE_RECURSE
  "CMakeFiles/nocstar_mem.dir/cache_model.cc.o"
  "CMakeFiles/nocstar_mem.dir/cache_model.cc.o.d"
  "CMakeFiles/nocstar_mem.dir/page_table.cc.o"
  "CMakeFiles/nocstar_mem.dir/page_table.cc.o.d"
  "CMakeFiles/nocstar_mem.dir/page_walker.cc.o"
  "CMakeFiles/nocstar_mem.dir/page_walker.cc.o.d"
  "libnocstar_mem.a"
  "libnocstar_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocstar_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
