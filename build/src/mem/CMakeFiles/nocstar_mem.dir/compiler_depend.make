# Empty compiler generated dependencies file for nocstar_mem.
# This may be replaced when dependencies are built.
