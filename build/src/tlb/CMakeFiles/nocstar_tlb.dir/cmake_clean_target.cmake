file(REMOVE_RECURSE
  "libnocstar_tlb.a"
)
