# Empty compiler generated dependencies file for nocstar_tlb.
# This may be replaced when dependencies are built.
