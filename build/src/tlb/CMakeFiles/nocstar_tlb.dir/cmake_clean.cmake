file(REMOVE_RECURSE
  "CMakeFiles/nocstar_tlb.dir/l1_tlb.cc.o"
  "CMakeFiles/nocstar_tlb.dir/l1_tlb.cc.o.d"
  "CMakeFiles/nocstar_tlb.dir/set_assoc_tlb.cc.o"
  "CMakeFiles/nocstar_tlb.dir/set_assoc_tlb.cc.o.d"
  "libnocstar_tlb.a"
  "libnocstar_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocstar_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
