
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlb/l1_tlb.cc" "src/tlb/CMakeFiles/nocstar_tlb.dir/l1_tlb.cc.o" "gcc" "src/tlb/CMakeFiles/nocstar_tlb.dir/l1_tlb.cc.o.d"
  "/root/repo/src/tlb/set_assoc_tlb.cc" "src/tlb/CMakeFiles/nocstar_tlb.dir/set_assoc_tlb.cc.o" "gcc" "src/tlb/CMakeFiles/nocstar_tlb.dir/set_assoc_tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nocstar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
