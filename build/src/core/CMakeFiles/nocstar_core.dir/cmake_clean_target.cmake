file(REMOVE_RECURSE
  "libnocstar_core.a"
)
