# Empty compiler generated dependencies file for nocstar_core.
# This may be replaced when dependencies are built.
