
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/distributed_org.cc" "src/core/CMakeFiles/nocstar_core.dir/distributed_org.cc.o" "gcc" "src/core/CMakeFiles/nocstar_core.dir/distributed_org.cc.o.d"
  "/root/repo/src/core/fabric.cc" "src/core/CMakeFiles/nocstar_core.dir/fabric.cc.o" "gcc" "src/core/CMakeFiles/nocstar_core.dir/fabric.cc.o.d"
  "/root/repo/src/core/monolithic_org.cc" "src/core/CMakeFiles/nocstar_core.dir/monolithic_org.cc.o" "gcc" "src/core/CMakeFiles/nocstar_core.dir/monolithic_org.cc.o.d"
  "/root/repo/src/core/nocstar_org.cc" "src/core/CMakeFiles/nocstar_core.dir/nocstar_org.cc.o" "gcc" "src/core/CMakeFiles/nocstar_core.dir/nocstar_org.cc.o.d"
  "/root/repo/src/core/org_factory.cc" "src/core/CMakeFiles/nocstar_core.dir/org_factory.cc.o" "gcc" "src/core/CMakeFiles/nocstar_core.dir/org_factory.cc.o.d"
  "/root/repo/src/core/organization.cc" "src/core/CMakeFiles/nocstar_core.dir/organization.cc.o" "gcc" "src/core/CMakeFiles/nocstar_core.dir/organization.cc.o.d"
  "/root/repo/src/core/private_org.cc" "src/core/CMakeFiles/nocstar_core.dir/private_org.cc.o" "gcc" "src/core/CMakeFiles/nocstar_core.dir/private_org.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nocstar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/nocstar_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nocstar_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nocstar_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/nocstar_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
