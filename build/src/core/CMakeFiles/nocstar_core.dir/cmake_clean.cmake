file(REMOVE_RECURSE
  "CMakeFiles/nocstar_core.dir/distributed_org.cc.o"
  "CMakeFiles/nocstar_core.dir/distributed_org.cc.o.d"
  "CMakeFiles/nocstar_core.dir/fabric.cc.o"
  "CMakeFiles/nocstar_core.dir/fabric.cc.o.d"
  "CMakeFiles/nocstar_core.dir/monolithic_org.cc.o"
  "CMakeFiles/nocstar_core.dir/monolithic_org.cc.o.d"
  "CMakeFiles/nocstar_core.dir/nocstar_org.cc.o"
  "CMakeFiles/nocstar_core.dir/nocstar_org.cc.o.d"
  "CMakeFiles/nocstar_core.dir/org_factory.cc.o"
  "CMakeFiles/nocstar_core.dir/org_factory.cc.o.d"
  "CMakeFiles/nocstar_core.dir/organization.cc.o"
  "CMakeFiles/nocstar_core.dir/organization.cc.o.d"
  "CMakeFiles/nocstar_core.dir/private_org.cc.o"
  "CMakeFiles/nocstar_core.dir/private_org.cc.o.d"
  "libnocstar_core.a"
  "libnocstar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocstar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
