file(REMOVE_RECURSE
  "libnocstar_energy.a"
)
