
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/noc_energy.cc" "src/energy/CMakeFiles/nocstar_energy.dir/noc_energy.cc.o" "gcc" "src/energy/CMakeFiles/nocstar_energy.dir/noc_energy.cc.o.d"
  "/root/repo/src/energy/sram_model.cc" "src/energy/CMakeFiles/nocstar_energy.dir/sram_model.cc.o" "gcc" "src/energy/CMakeFiles/nocstar_energy.dir/sram_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nocstar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
