# Empty dependencies file for nocstar_energy.
# This may be replaced when dependencies are built.
