file(REMOVE_RECURSE
  "CMakeFiles/nocstar_energy.dir/noc_energy.cc.o"
  "CMakeFiles/nocstar_energy.dir/noc_energy.cc.o.d"
  "CMakeFiles/nocstar_energy.dir/sram_model.cc.o"
  "CMakeFiles/nocstar_energy.dir/sram_model.cc.o.d"
  "libnocstar_energy.a"
  "libnocstar_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocstar_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
