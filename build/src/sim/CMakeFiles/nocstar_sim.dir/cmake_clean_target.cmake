file(REMOVE_RECURSE
  "libnocstar_sim.a"
)
