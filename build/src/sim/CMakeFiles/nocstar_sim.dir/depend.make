# Empty dependencies file for nocstar_sim.
# This may be replaced when dependencies are built.
