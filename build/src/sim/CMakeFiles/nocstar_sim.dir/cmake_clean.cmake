file(REMOVE_RECURSE
  "CMakeFiles/nocstar_sim.dir/event_queue.cc.o"
  "CMakeFiles/nocstar_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/nocstar_sim.dir/random.cc.o"
  "CMakeFiles/nocstar_sim.dir/random.cc.o.d"
  "CMakeFiles/nocstar_sim.dir/stats.cc.o"
  "CMakeFiles/nocstar_sim.dir/stats.cc.o.d"
  "libnocstar_sim.a"
  "libnocstar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocstar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
