file(REMOVE_RECURSE
  "CMakeFiles/nocstar_cpu.dir/system.cc.o"
  "CMakeFiles/nocstar_cpu.dir/system.cc.o.d"
  "libnocstar_cpu.a"
  "libnocstar_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocstar_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
