# Empty dependencies file for nocstar_cpu.
# This may be replaced when dependencies are built.
