file(REMOVE_RECURSE
  "libnocstar_cpu.a"
)
