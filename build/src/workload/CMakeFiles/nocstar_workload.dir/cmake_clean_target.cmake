file(REMOVE_RECURSE
  "libnocstar_workload.a"
)
