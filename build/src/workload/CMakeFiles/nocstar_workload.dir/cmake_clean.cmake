file(REMOVE_RECURSE
  "CMakeFiles/nocstar_workload.dir/generator.cc.o"
  "CMakeFiles/nocstar_workload.dir/generator.cc.o.d"
  "CMakeFiles/nocstar_workload.dir/spec.cc.o"
  "CMakeFiles/nocstar_workload.dir/spec.cc.o.d"
  "CMakeFiles/nocstar_workload.dir/trace.cc.o"
  "CMakeFiles/nocstar_workload.dir/trace.cc.o.d"
  "libnocstar_workload.a"
  "libnocstar_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocstar_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
