# Empty dependencies file for nocstar_workload.
# This may be replaced when dependencies are built.
